package incident

import "repro/internal/harness"

// Episodes returns the committed incident corpus as un-captured bundle
// configurations: six named adversarial episodes chosen to pin the
// simulator paths that past perf refactors (calendar queue, context
// recycling, batched tick delivery) had to re-prove equivalent ad hoc.
// `INCIDENT_REGEN=1 go test ./internal/incident/` re-captures them into
// testdata/incidents/; the replay-matrix test re-runs the committed
// bundles on every event core × delivery mode × engine parallelism.
//
// Episode configurations are append-only in spirit: changing one rewrites
// a committed trace, which is exactly the kind of silent history edit the
// corpus exists to prevent. Add new episodes instead.
func Episodes() []*Bundle {
	return []*Bundle{
		{
			// Two extreme-value Byzantine parties under split views try to
			// drag the trimmed hull past the honest range: outputs hug the
			// hull edge without crossing it. Any regression in trim-order
			// or quorum assembly shows up as a decision shift here first.
			Name:     "near-miss-validity",
			Scenario: "splitviews+extreme/n=15,t=2",
			Protocol: ProtoTrim,
			Eps:      1e-2,
			Lo:       0,
			Hi:       1,
			Seed:     101,
			Inputs:   harness.OutlierInputs(15, 0, 1),
		},
		{
			// Adaptive termination with spam flooding under a skewed
			// schedule: the horizon is estimated from an initial exchange
			// while a spammer inflates traffic, stressing the adaptive
			// round-horizon piggybacking.
			Name:     "adaptive-horizon-spam",
			Scenario: "skew+spam/n=15,t=2",
			Protocol: ProtoTrim,
			Adaptive: true,
			Eps:      1e-2,
			Lo:       0,
			Hi:       1,
			Seed:     202,
			Inputs:   harness.UniformInputs(15, 0, 1, 2025),
		},
		{
			// A deliberately tiny event budget aborts a dense n=32 run in
			// the middle of a batched tick: the abort must happen after the
			// same delivery in every mode (budget-tripping ticks run the
			// reference loop).
			Name:      "budget-abort-mid-tick",
			Scenario:  "random/n=32,t=5",
			Protocol:  ProtoCrash,
			Eps:       1e-3,
			Lo:        0,
			Hi:        1,
			Seed:      303,
			MaxEvents: 2000,
			Inputs:    harness.LinearInputs(32, 0, 1),
		},
		{
			// Lock-step delivery at n=24 makes every tick dense, so the
			// last decision lands mid-tick: the batched core's mid-tick
			// completion repair must cut off at exactly the recorded
			// delivery.
			Name:     "mid-tick-completion",
			Scenario: "sync/n=24,t=3",
			Protocol: ProtoCrash,
			Eps:      1e-2,
			Lo:       0,
			Hi:       1,
			Seed:     404,
			Inputs:   harness.LinearInputs(24, 0, 1),
		},
		{
			// Maximum fault bound (n=2t+2) with bimodal inputs under split
			// views: the slowest provable contraction, the most rounds per
			// unit of progress, and the heaviest quorum-boundary traffic.
			Name:     "worst-case-contraction",
			Scenario: "splitviews/n=16,t=7",
			Protocol: ProtoCrash,
			Eps:      1e-2,
			Lo:       0,
			Hi:       1,
			Seed:     505,
			Inputs:   harness.BimodalInputs(16, 0, 1),
		},
		{
			// Composite fault mix at the largest corpus size: crashes and
			// equivocators alternating across five fault slots under a
			// partitioned schedule, trim protocol at its resilience floor.
			Name:     "crash-equivocate-large-n",
			Scenario: "partition+crash+equivocate/n=36,t=5",
			Protocol: ProtoTrim,
			Eps:      1e-1,
			Lo:       0,
			Hi:       1,
			Seed:     606,
			Inputs:   harness.LinearInputs(36, 0, 1),
		},
		{
			// Heavy Bernoulli loss plus duplication with the reliable
			// transport: every drop and dup decision is part of the recorded
			// fate log (bundle format v2), and the ack/retransmit sublayer's
			// recovery traffic is part of the digest. Any change to the fate
			// draw order, the relnet framing, or the retransmit schedule
			// shifts the delivery hash here first.
			Name:      "loss-heavy-convergence",
			Scenario:  "random+loss:0.1+dup:0.05/n=16,t=3",
			Protocol:  ProtoCrash,
			Eps:       1e-2,
			Lo:        0,
			Hi:        1,
			Seed:      707,
			MaxEvents: 20_000_000,
			Reliable:  true,
			Inputs:    harness.BimodalInputs(16, 0, 1),
		},
		{
			// A correlated regional blackout overlapping staggered flap
			// windows on the raw transport: the run loses messages to two
			// distinct virtual-time windows and stalls with partial
			// decisions. The recorded digest pins the stall verdict and the
			// exact drop set, so replay proves degradation is deterministic,
			// not incidental.
			Name:      "regional-outage-flap",
			Scenario:  "random+flap:60+outage:4:50:100/n=16,t=3",
			Protocol:  ProtoCrash,
			Eps:       1e-2,
			Lo:        0,
			Hi:        1,
			Seed:      808,
			MaxEvents: 20_000_000,
			Inputs:    harness.LinearInputs(16, 0, 1),
		},
		{
			// Two parties checkpoint at tick 20, crash at tick 50 losing 30
			// ticks of progress, and rejoin through the adaptive DECIDED
			// re-announce over the reliable transport (bundle format v3: the
			// snapshot content digests are part of the recorded trace). Any
			// change to the snapshot codec, the restore path, or the rejoin
			// re-send order shifts the checkpoint digests or the delivery
			// hash here first.
			Name:      "rollback-rejoin-reconverge",
			Scenario:  "random+recover:2:50:30/n=9,t=2",
			Protocol:  ProtoCrash,
			Adaptive:  true,
			Eps:       1e-3,
			Lo:        0,
			Hi:        1,
			Seed:      7,
			MaxEvents: 20_000_000,
			Reliable:  true,
			Inputs:    harness.BimodalInputs(9, 0, 1),
		},
		{
			// Two amnesiac parties restart from their tick-0 checkpoint under
			// Bernoulli loss: every pre-crash delivery to them is forgotten
			// and the whole exchange is redone through ack/retransmit
			// catch-up. Pins the zero-state restore path and the interaction
			// between restart darkness windows and the retransmit schedule.
			Name:      "amnesia-restart-catchup",
			Scenario:  "random+amnesia:2:1+loss:0.05/n=12,t=3",
			Protocol:  ProtoCrash,
			Eps:       1e-2,
			Lo:        0,
			Hi:        1,
			Seed:      909,
			MaxEvents: 20_000_000,
			Reliable:  true,
			Inputs:    harness.BimodalInputs(12, 0, 1),
		},
	}
}
