package incident

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sim"
)

// The wire layout is deliberately boring: a 4-byte magic, a little-endian
// uint16 version, a varint-packed payload, and a CRC32 (IEEE) trailer over
// the payload. Counts and times are uvarints (delays are small positive
// integers, so the dense log packs to ~1-2 bytes per send), floats are
// IEEE-754 bit patterns, and the seed is a zigzag varint. Decode is
// strictly bounds-checked and capped, so a truncated, corrupted, or
// hostile file fails with a wrapped sentinel error — never a panic or an
// absurd allocation.

var bundleMagic = [4]byte{'A', 'A', 'I', 'B'}

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) uvar(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) ivar(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.uvar(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Encode serializes the bundle. The bundle must validate. Bundles with no
// network-fate data encode as version 1, byte-identical to the historical
// format; fate data (drops, dups, the reliable flag, nonzero digest
// drop/dup counters) switches to version 2, which appends the fate record
// after the digest; checkpoint digests (crash-recovery runs) switch to
// version 3, which appends the checkpoint record after the fate record.
func Encode(b *Bundle) ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(b.Name) > maxStringLen || len(b.Scenario) > maxStringLen {
		return nil, fmt.Errorf("%w: name or scenario too long", ErrMalformed)
	}
	if len(b.Delays) > maxSends {
		return nil, fmt.Errorf("%w: %d sends exceed cap", ErrMalformed, len(b.Delays))
	}
	version := uint16(1)
	if b.fated() {
		version = versionFated
	}
	if b.recovered() {
		version = versionRecover
	}
	e := &encoder{buf: make([]byte, 0, 64+8*len(b.Inputs)+3*len(b.Delays)+4*len(b.SendSums))}
	e.str(b.Name)
	e.str(b.Scenario)
	e.str(b.Protocol)
	var flags uint8
	if b.Adaptive {
		flags |= 1
	}
	if b.Reliable {
		flags |= 2
	}
	e.u8(flags)
	e.f64(b.Eps)
	e.f64(b.Lo)
	e.f64(b.Hi)
	e.uvar(uint64(b.ExtraRounds))
	e.uvar(uint64(b.SyncRoundTicks))
	e.ivar(b.Seed)
	e.uvar(uint64(b.MaxEvents))
	e.uvar(uint64(len(b.Inputs)))
	for _, v := range b.Inputs {
		e.f64(v)
	}
	e.uvar(uint64(len(b.Crashes)))
	for _, c := range b.Crashes {
		e.uvar(uint64(c.Party))
		e.uvar(uint64(c.AfterSends))
	}
	e.uvar(uint64(len(b.Byz)))
	for _, z := range b.Byz {
		e.uvar(uint64(z.Party))
		e.str(z.Name)
	}
	e.uvar(uint64(len(b.Delays)))
	for _, d := range b.Delays {
		e.uvar(uint64(d))
	}
	e.uvar(uint64(len(b.SendSums)))
	for _, s := range b.SendSums {
		e.u32(s)
	}
	d := &b.Digest
	e.uvar(uint64(len(d.Decisions)))
	for _, dec := range d.Decisions {
		e.uvar(uint64(dec.Party))
		e.f64(dec.Value)
		e.uvar(uint64(dec.At))
	}
	e.uvar(uint64(d.FinishTime))
	e.uvar(uint64(d.MaxHonestDelay))
	e.uvar(uint64(d.MessagesSent))
	e.uvar(uint64(d.MessagesDelivered))
	e.uvar(uint64(d.BytesSent))
	e.uvar(uint64(d.Deliveries))
	e.u64(d.DeliveryHash)
	e.u8(d.RunErr)
	e.uvar(uint64(d.ProtoErrs))
	if version >= versionFated {
		e.uvar(uint64(len(b.Drops)))
		for _, seq := range b.Drops {
			e.uvar(seq)
		}
		e.uvar(uint64(len(b.Dups)))
		for _, dup := range b.Dups {
			e.uvar(dup.Seq)
			e.uvar(uint64(dup.Extra))
		}
		e.uvar(uint64(d.MessagesDropped))
		e.uvar(uint64(d.MessagesDuped))
	}
	if version >= versionRecover {
		e.uvar(uint64(len(b.Checkpoints)))
		for _, ck := range b.Checkpoints {
			e.u64(ck)
		}
	}

	out := make([]byte, 0, 6+len(e.buf)+4)
	out = append(out, bundleMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, version)
	out = append(out, e.buf...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(e.buf))
	return out, nil
}

// decoder is a bounds-checked cursor over the payload. Every read method
// records the first error and turns subsequent reads into no-ops, so decode
// logic stays linear.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) uvar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) ivar() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := d.uvar()
	if n > maxStringLen {
		d.fail(fmt.Errorf("%w: string length %d exceeds cap", ErrMalformed, n))
		return ""
	}
	return string(d.take(int(n)))
}

// count reads a length prefix and enforces a cap.
func (d *decoder) count(cap uint64, what string) int {
	n := d.uvar()
	if n > cap {
		d.fail(fmt.Errorf("%w: %s count %d exceeds cap %d", ErrMalformed, what, n, cap))
		return 0
	}
	return int(n)
}

// intField reads a uvarint that must fit a non-negative int.
func (d *decoder) intField(what string) int {
	v := d.uvar()
	if v > math.MaxInt32 {
		d.fail(fmt.Errorf("%w: %s %d out of range", ErrMalformed, what, v))
		return 0
	}
	return int(v)
}

// timeField reads a uvarint sim.Time.
func (d *decoder) timeField(what string) sim.Time {
	v := d.uvar()
	if v > uint64(math.MaxInt64) {
		d.fail(fmt.Errorf("%w: %s %d out of range", ErrMalformed, what, v))
		return 0
	}
	return sim.Time(v)
}

// Decode parses and validates a serialized bundle. Malformed input fails
// with an error wrapping ErrMalformed (ErrTruncated/ErrCorrupt for the
// specific cases); an unsupported format version fails with ErrVersion.
func Decode(data []byte) (*Bundle, error) {
	if len(data) < 6+4 {
		return nil, ErrTruncated
	}
	if [4]byte(data[:4]) != bundleMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	if version < 1 || version > Version {
		return nil, fmt.Errorf("%w: got version %d, support 1..%d", ErrVersion, version, Version)
	}
	payload := data[6 : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, ErrCorrupt
	}

	d := &decoder{buf: payload}
	b := &Bundle{}
	b.Name = d.str()
	b.Scenario = d.str()
	b.Protocol = d.str()
	flags := d.u8()
	knownFlags := uint8(1)
	if version >= versionFated {
		knownFlags |= 2
	}
	if flags&^knownFlags != 0 {
		d.fail(fmt.Errorf("%w: unknown flag bits %#x", ErrMalformed, flags))
	}
	b.Adaptive = flags&1 != 0
	b.Reliable = flags&2 != 0
	b.Eps = d.f64()
	b.Lo = d.f64()
	b.Hi = d.f64()
	b.ExtraRounds = d.intField("extra rounds")
	b.SyncRoundTicks = d.timeField("sync round ticks")
	b.Seed = d.ivar()
	b.MaxEvents = d.intField("event budget")
	if n := d.count(maxInputs, "input"); d.err == nil && n > 0 {
		b.Inputs = make([]float64, n)
		for i := range b.Inputs {
			b.Inputs[i] = d.f64()
		}
	}
	if n := d.count(maxFaults, "crash"); d.err == nil && n > 0 {
		b.Crashes = make([]sim.CrashPlan, n)
		for i := range b.Crashes {
			b.Crashes[i] = sim.CrashPlan{
				Party:      sim.PartyID(d.intField("crash party")),
				AfterSends: d.intField("crash send budget"),
			}
		}
	}
	if n := d.count(maxFaults, "byzantine"); d.err == nil && n > 0 {
		b.Byz = make([]ByzRef, n)
		for i := range b.Byz {
			b.Byz[i] = ByzRef{Party: sim.PartyID(d.intField("byzantine party")), Name: d.str()}
		}
	}
	if n := d.count(maxSends, "delay"); d.err == nil && n > 0 {
		b.Delays = make([]sim.Time, n)
		for i := range b.Delays {
			b.Delays[i] = d.timeField("delay")
		}
	}
	if n := d.count(maxSends, "send sum"); d.err == nil && n > 0 {
		b.SendSums = make([]uint32, n)
		for i := range b.SendSums {
			b.SendSums[i] = d.u32()
		}
	}
	if n := d.count(maxDecisions, "decision"); d.err == nil && n > 0 {
		b.Digest.Decisions = make([]Decision, n)
		for i := range b.Digest.Decisions {
			b.Digest.Decisions[i] = Decision{
				Party: sim.PartyID(d.intField("decision party")),
				Value: d.f64(),
				At:    d.timeField("decision time"),
			}
		}
	}
	b.Digest.FinishTime = d.timeField("finish time")
	b.Digest.MaxHonestDelay = d.timeField("max honest delay")
	b.Digest.MessagesSent = int64(d.uvar())
	b.Digest.MessagesDelivered = int64(d.uvar())
	b.Digest.BytesSent = int64(d.uvar())
	b.Digest.Deliveries = int64(d.uvar())
	b.Digest.DeliveryHash = d.u64()
	b.Digest.RunErr = d.u8()
	b.Digest.ProtoErrs = int64(d.uvar())
	if version >= versionFated {
		if n := d.count(maxSends, "drop"); d.err == nil && n > 0 {
			b.Drops = make([]uint64, n)
			for i := range b.Drops {
				b.Drops[i] = d.uvar()
			}
		}
		if n := d.count(maxSends, "dup"); d.err == nil && n > 0 {
			b.Dups = make([]Dup, n)
			for i := range b.Dups {
				b.Dups[i] = Dup{Seq: d.uvar(), Extra: d.timeField("dup extra delay")}
			}
		}
		b.Digest.MessagesDropped = int64(d.uvar())
		b.Digest.MessagesDuped = int64(d.uvar())
	}
	if version >= versionRecover {
		if n := d.count(maxFaults, "checkpoint"); d.err == nil && n > 0 {
			b.Checkpoints = make([]uint64, n)
			for i := range b.Checkpoints {
				b.Checkpoints[i] = d.u64()
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrMalformed, len(payload)-d.off)
	}
	if b.Digest.RunErr > RunOtherErr {
		return nil, fmt.Errorf("%w: unknown run-error code %d", ErrMalformed, b.Digest.RunErr)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Save encodes the bundle to a file.
func Save(b *Bundle, path string) error {
	data, err := Encode(b)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads and decodes a bundle file.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	b, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("incident: %s: %w", filepath.Base(path), err)
	}
	return b, nil
}

// BundleExt is the corpus file extension.
const BundleExt = ".bundle"

// LoadDir loads every *.bundle file in a directory, sorted by filename so
// corpus iteration order is deterministic.
func LoadDir(dir string) ([]*Bundle, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	var names []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), BundleExt) {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	out := make([]*Bundle, 0, len(names))
	for _, name := range names {
		b, err := Load(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
