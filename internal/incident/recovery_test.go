package incident

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/harness"
)

// recoveryBundle returns an un-captured bundle config for a crash-recovery
// run: two parties checkpoint, crash with rollback lag, and rejoin through
// the adaptive DECIDED re-announce over the reliable transport.
func recoveryBundle() *Bundle {
	return &Bundle{
		Name:      "recovery-capture-test",
		Scenario:  "random+recover:2:50:30/n=9,t=2",
		Protocol:  ProtoCrash,
		Adaptive:  true,
		Eps:       1e-3,
		Lo:        0,
		Hi:        1,
		Seed:      7,
		MaxEvents: 20_000_000,
		Reliable:  true,
		Inputs:    harness.LinearInputs(9, 0, 1),
	}
}

// TestRecoveryCaptureReplayV3 pins the version-3 loop end to end: capture
// records the snapshot content digests, the bundle encodes as version 3,
// survives a codec round trip, and replays with zero divergence.
func TestRecoveryCaptureReplayV3(t *testing.T) {
	b := recoveryBundle()
	rep, err := Capture(b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("capture run failed: %s", rep.Failure())
	}
	if len(b.Checkpoints) != 2 {
		t.Fatalf("recorded %d checkpoint digests, want 2 (one per restart plan)", len(b.Checkpoints))
	}
	for i, ck := range b.Checkpoints {
		if ck == 0 {
			t.Fatalf("checkpoint digest %d is zero", i)
		}
	}

	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != versionRecover {
		t.Fatalf("recovery bundle encoded as version %d, want %d", v, versionRecover)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", b, got)
	}

	if _, div, err := Replay(got); err != nil || div != nil {
		t.Fatalf("recovery replay: div=%v err=%v", div, err)
	}
}

// TestReplayDetectsMutatedCheckpoint pins that tampering with a recorded
// snapshot digest is reported by name, without a bad send (the trace itself
// still matches).
func TestReplayDetectsMutatedCheckpoint(t *testing.T) {
	b := recoveryBundle()
	if _, err := Capture(b); err != nil {
		t.Fatal(err)
	}
	b.Checkpoints[0] ^= 1
	_, div, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil || len(div.Mismatches) == 0 {
		t.Fatal("checkpoint tampering not detected")
	}
	if div.FirstBadSend != NoDivergentSend {
		t.Fatalf("unexpected bad send %d", div.FirstBadSend)
	}
	found := false
	for _, m := range div.Mismatches {
		if strings.Contains(m, "checkpoint") {
			found = true
		}
	}
	if !found {
		t.Fatalf("divergence does not name the checkpoint: %v", div.Mismatches)
	}
}

// TestRecoveryBundleValidation covers the v3-specific Validate rules.
func TestRecoveryBundleValidation(t *testing.T) {
	b := recoveryBundle()
	if _, err := Capture(b); err != nil {
		t.Fatal(err)
	}
	b.Checkpoints[1] = 0
	if err := b.Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero checkpoint digest accepted: %v", err)
	}
}

// TestNonRecoveryBundleStaysPreV3 pins the corpus-stability contract: a
// bundle without checkpoint digests must not encode as version 3, so the
// committed v1/v2 corpus re-encodes byte-identically.
func TestNonRecoveryBundleStaysPreV3(t *testing.T) {
	b := testBundle()
	if _, err := Capture(b); err != nil {
		t.Fatal(err)
	}
	if len(b.Checkpoints) != 0 {
		t.Fatalf("non-recovery run recorded %d checkpoint digests", len(b.Checkpoints))
	}
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v >= versionRecover {
		t.Fatalf("checkpoint-free bundle encoded as version %d", v)
	}
}
