package incident

import (
	"errors"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

// testBundle returns an un-captured bundle config for a small crash run.
func testBundle() *Bundle {
	return &Bundle{
		Name:     "capture-test",
		Scenario: "random/n=7,t=2",
		Protocol: ProtoCrash,
		Eps:      1e-3,
		Lo:       0,
		Hi:       1,
		Seed:     424242,
		Inputs:   harness.LinearInputs(7, 0, 1),
		Crashes:  []sim.CrashPlan{{Party: 0, AfterSends: 10}},
	}
}

func TestCaptureThenReplayMatches(t *testing.T) {
	b := testBundle()
	rep, err := Capture(b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("capture run failed: %s", rep.Failure())
	}
	if len(b.Delays) == 0 || len(b.SendSums) != len(b.Delays) {
		t.Fatalf("trace not captured: %d delays, %d sums", len(b.Delays), len(b.SendSums))
	}
	if len(b.Digest.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}

	replayRep, div, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("replay diverged: %v", div.Error())
	}
	if replayRep.Result.FinishTime != rep.Result.FinishTime {
		t.Fatalf("finish time %d vs %d", replayRep.Result.FinishTime, rep.Result.FinishTime)
	}

	// The full loop survives serialization.
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, div, err := Replay(b2); err != nil || div != nil {
		t.Fatalf("decoded bundle replay: div=%v err=%v", div, err)
	}
}

// TestCaptureFailingRun pins that a non-OK execution (event budget abort)
// is captured and replays to the same verdict.
func TestCaptureFailingRun(t *testing.T) {
	b := testBundle()
	b.MaxEvents = 50
	rep, err := Capture(b)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.RunErr, sim.ErrEventBudget) {
		t.Fatalf("run verdict %v, want event budget", rep.RunErr)
	}
	if b.Digest.RunErr != RunEventBudget {
		t.Fatalf("digest run-error code %d", b.Digest.RunErr)
	}
	if _, div, err := Replay(b); err != nil || div != nil {
		t.Fatalf("failing-run replay: div=%v err=%v", div, err)
	}
}

// TestReplayDetectsMutatedDelay is the acceptance criterion: perturbing one
// recorded delay changes the interleaving, and the diff names the first
// send whose content diverged.
func TestReplayDetectsMutatedDelay(t *testing.T) {
	b := testBundle()
	if _, err := Capture(b); err != nil {
		t.Fatal(err)
	}

	// Stretch one mid-run delay far enough to reorder quorum assembly.
	mut := b.Delays[len(b.Delays)/3]
	b.Delays[len(b.Delays)/3] = mut + 5000

	_, div, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("mutated bundle replayed without divergence")
	}
	if div.FirstBadSend == NoDivergentSend {
		t.Fatalf("divergence reported without a first bad send: %v", div.Error())
	}
	if len(div.Mismatches) == 0 {
		t.Fatal("divergence carries no field mismatches")
	}
	if !errors.Is(div.Error(), ErrDivergence) {
		t.Fatalf("divergence error %v does not wrap ErrDivergence", div.Error())
	}
	t.Logf("divergence: %v", div.Error())
}

// TestReplayDetectsMutatedDigest pins that pure digest tampering (without
// touching the trace) is also reported.
func TestReplayDetectsMutatedDigest(t *testing.T) {
	b := testBundle()
	if _, err := Capture(b); err != nil {
		t.Fatal(err)
	}
	b.Digest.DeliveryHash ^= 1
	_, div, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil || len(div.Mismatches) == 0 {
		t.Fatal("digest tampering not detected")
	}
	// Sends themselves matched; the digest caught it.
	if div.FirstBadSend != NoDivergentSend {
		t.Fatalf("unexpected bad send %d", div.FirstBadSend)
	}
}

// TestCaptureByzantineScenario exercises the explicit-Byz override path.
func TestCaptureByzantineScenario(t *testing.T) {
	b := &Bundle{
		Name:     "byz-test",
		Scenario: "skew/n=15,t=2",
		Protocol: ProtoTrim,
		Eps:      1e-2,
		Lo:       0,
		Hi:       1,
		Seed:     7,
		Inputs:   harness.LinearInputs(15, 0, 1),
		Byz:      []ByzRef{{Party: 0, Name: "equivocate"}, {Party: 1, Name: "spam"}},
	}
	rep, err := Capture(b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("byz capture run failed: %s", rep.Failure())
	}
	if _, div, err := Replay(b); err != nil || div != nil {
		t.Fatalf("byz replay: div=%v err=%v", div, err)
	}
}
