package incident

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// sendSum checksums a send's observable content: endpoints, send time, and
// payload bytes (FNV-1a). The result is forced nonzero so a dense array can
// use zero for "no send recorded at this sequence".
func sendSum(env sim.Envelope, now sim.Time) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ uint32(v&0xff)) * prime32
			v >>= 8
		}
	}
	mix(uint64(env.From))
	mix(uint64(env.To))
	mix(uint64(now))
	mix(uint64(len(env.Data)))
	for _, c := range env.Data {
		h = (h ^ uint32(c)) * prime32
	}
	if h == 0 {
		h = 1
	}
	return h
}

// digester is the Spec.Observer that folds every delivery into a running
// hash. Observer callbacks replay in identical order across batch modes
// (see sim.Config.Batch), so the hash is mode-invariant.
type digester struct {
	deliveries int64
	hash       uint64
}

func (d *digester) observe(now sim.Time, env sim.Envelope) {
	const prime64 = 1099511628211
	h := d.hash
	if h == 0 {
		h = 14695981039346656037 // FNV-1a offset basis
	}
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mix(uint64(now))
	mix(uint64(env.From))
	mix(uint64(env.To))
	mix(env.Seq)
	mix(uint64(len(env.Data)))
	for _, c := range env.Data {
		h = (h ^ uint64(c)) * prime64
	}
	d.hash = h
	d.deliveries++
}

// captureProbe wraps the real scheduler during capture: it records the
// full network fate of every send — delay, drop verdict, duplication —
// plus the per-send content checksum. It implements sim.FateScheduler, so
// the simulator routes every send through Fate whether or not the wrapped
// scheduler decides drops/dups; for a fate-free scheduler the recorded
// fates are plain delays and the run is byte-identical to the historical
// Delay-only capture path.
type captureProbe struct {
	inner  sim.Scheduler
	delays []sim.Time
	sums   []uint32
	drops  []uint64
	dups   []Dup
}

var _ sim.FateScheduler = (*captureProbe)(nil)

func (p *captureProbe) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	return p.Fate(env, now, rng).Delay
}

func (p *captureProbe) Fate(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Fate {
	f := sim.FateOf(p.inner, env, now, rng)
	for uint64(len(p.delays)) <= env.Seq {
		p.delays = append(p.delays, 0)
		p.sums = append(p.sums, 0)
	}
	p.delays[env.Seq] = f.Delay
	p.sums[env.Seq] = sendSum(env, now)
	// The simulator hands out send sequences in ascending order, so the
	// fate lists are strictly ascending by construction (Validate pins it).
	if f.Drop {
		p.drops = append(p.drops, env.Seq)
	}
	if f.DupExtra > 0 {
		p.dups = append(p.dups, Dup{Seq: env.Seq, Extra: f.DupExtra})
	}
	return f
}

// Capture executes the run a bundle describes and fills in its trace
// (Delays, SendSums) and Digest. The bundle's config fields (Scenario,
// Protocol, Seed, Inputs, fault overrides, ...) must already be set; any
// prior trace content is replaced. The run's own report is returned so
// callers can print or inspect the outcome.
//
// Note that Capture resolves Byzantine names through the scenario registry,
// and the captured run is the one the bundle will replay — the whole loop
// is self-consistent by construction.
func Capture(b *Bundle) (*harness.Report, error) {
	spec, err := b.spec()
	if err != nil {
		return nil, err
	}
	probe := &captureProbe{inner: spec.Scheduler.Scheduler}
	spec.Scheduler.Scheduler = probe
	dig := &digester{}
	spec.Observer = dig.observe
	rep, err := harness.Run(spec)
	if err != nil {
		return nil, fmt.Errorf("incident: capture: %w", err)
	}
	b.Delays = probe.delays
	b.SendSums = probe.sums
	b.Drops = probe.drops
	b.Dups = probe.dups
	b.Checkpoints = append([]uint64(nil), rep.Checkpoints...)
	b.Digest = digestOf(rep, dig.deliveries, dig.hash)
	return rep, nil
}

// FromFuzz builds an un-captured bundle from a fuzzer violation record.
// Scenario-layer violations carry a full scenario string; protocol-fuzzer
// violations carry a scheduler token plus explicit fault assignments,
// which become the bundle's overrides. Capture the returned bundle to
// fill in its trace and digest.
func FromFuzz(v harness.FuzzViolation, name string) (*Bundle, error) {
	tok, err := ProtoToken(v.Proto)
	if err != nil {
		return nil, err
	}
	scen := v.Scenario
	if scen == "" {
		scen = scenario.Spec{Sched: v.SchedToken, N: v.N, T: v.T}.String()
	}
	b := &Bundle{
		Name:      name,
		Scenario:  scen,
		Protocol:  tok,
		Adaptive:  v.Adaptive,
		Reliable:  v.Reliable,
		Eps:       v.Eps,
		Lo:        v.Lo,
		Hi:        v.Hi,
		Seed:      v.Seed,
		MaxEvents: v.MaxEvents,
		Inputs:    append([]float64(nil), v.Inputs...),
		Crashes:   append([]sim.CrashPlan(nil), v.Crashes...),
	}
	for _, z := range v.Byz {
		b.Byz = append(b.Byz, ByzRef{Party: z.Party, Name: z.Name})
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("incident: violation %q does not lower to a bundle: %w", v.Desc, err)
	}
	return b, nil
}

// NoDivergentSend is Divergence.FirstBadSend's value when every recorded
// send matched (the divergence was caught by the digest instead, e.g. a
// missing delivery).
const NoDivergentSend = math.MaxUint64

// Divergence describes how a replay differed from the recorded execution.
type Divergence struct {
	// FirstBadSend is the lowest send sequence whose content checksum
	// differed from the recording (or which the recording does not
	// contain), or NoDivergentSend if sends matched.
	FirstBadSend uint64
	// Mismatches lists human-readable field-level diffs.
	Mismatches []string
}

// Error renders the divergence as an error wrapping ErrDivergence.
func (d *Divergence) Error() error {
	if d == nil {
		return nil
	}
	first := "none"
	if d.FirstBadSend != NoDivergentSend {
		first = fmt.Sprintf("%d", d.FirstBadSend)
	}
	return fmt.Errorf("%w: first divergent send seq=%s; %d field mismatches: %v",
		ErrDivergence, first, len(d.Mismatches), d.Mismatches)
}

// replayProbe replays recorded network fates — delays plus the recorded
// drop/dup decisions — and verifies every send against the recorded
// checksums, tracking the first divergent sequence.
type replayProbe struct {
	delays   []sim.Time
	sums     []uint32
	drops    map[uint64]struct{}
	dups     map[uint64]sim.Time
	fallback sim.Time
	firstBad uint64
	sends    uint64
}

var _ sim.FateScheduler = (*replayProbe)(nil)

func (p *replayProbe) Delay(env sim.Envelope, now sim.Time, rng *rand.Rand) sim.Time {
	return p.Fate(env, now, rng).Delay
}

func (p *replayProbe) Fate(env sim.Envelope, now sim.Time, _ *rand.Rand) sim.Fate {
	p.sends++
	bad := env.Seq >= uint64(len(p.sums)) ||
		p.sums[env.Seq] == 0 ||
		p.sums[env.Seq] != sendSum(env, now)
	if bad && env.Seq < p.firstBad {
		p.firstBad = env.Seq
	}
	f := sim.Fate{Delay: p.fallback}
	if env.Seq < uint64(len(p.delays)) {
		if d := p.delays[env.Seq]; d != 0 {
			f.Delay = d
		}
	}
	if _, ok := p.drops[env.Seq]; ok {
		f.Drop = true
	}
	if extra, ok := p.dups[env.Seq]; ok {
		f.DupExtra = extra
	}
	return f
}

// Prepared is a bundle lowered to a runnable replay spec. Run the Spec
// (harness.Run, or harness.RunAll for a matrix) and hand the report to
// Diff. Each Prepared must be used for exactly one run: the probe and
// digest accumulate state.
type Prepared struct {
	Spec   harness.Spec
	bundle *Bundle
	probe  *replayProbe
	dig    *digester
}

// Prepare lowers the bundle for replay: the spec's scheduler is replaced
// by the recorded delay log (with send verification) and the observer by a
// fresh digester.
func Prepare(b *Bundle) (*Prepared, error) {
	spec, err := b.spec()
	if err != nil {
		return nil, err
	}
	probe := &replayProbe{
		delays:   b.Delays,
		sums:     b.SendSums,
		fallback: 1,
		firstBad: NoDivergentSend,
	}
	if len(b.Drops) > 0 {
		probe.drops = make(map[uint64]struct{}, len(b.Drops))
		for _, seq := range b.Drops {
			probe.drops[seq] = struct{}{}
		}
	}
	if len(b.Dups) > 0 {
		probe.dups = make(map[uint64]sim.Time, len(b.Dups))
		for _, dup := range b.Dups {
			probe.dups[dup.Seq] = dup.Extra
		}
	}
	spec.Scheduler = sched.Named{Name: "replay:" + b.Scenario, Scheduler: probe}
	dig := &digester{}
	spec.Observer = dig.observe
	return &Prepared{Spec: spec, bundle: b, probe: probe, dig: dig}, nil
}

// Diff compares the finished replay against the recorded digest. A nil
// return means the replay was equivalent in every observable.
func (p *Prepared) Diff(rep *harness.Report) *Divergence {
	div := &Divergence{FirstBadSend: p.probe.firstBad}
	add := func(format string, args ...any) {
		div.Mismatches = append(div.Mismatches, fmt.Sprintf(format, args...))
	}
	want, got := &p.bundle.Digest, digestOf(rep, p.dig.deliveries, p.dig.hash)
	recordedSends := uint64(0)
	for _, s := range p.bundle.SendSums {
		if s != 0 {
			recordedSends++
		}
	}
	if p.probe.sends != recordedSends {
		add("sends: recorded %d, replayed %d", recordedSends, p.probe.sends)
	}
	if len(got.Decisions) != len(want.Decisions) {
		add("decisions: recorded %d, replayed %d", len(want.Decisions), len(got.Decisions))
	} else {
		for i := range want.Decisions {
			w, g := want.Decisions[i], got.Decisions[i]
			if w != g {
				add("decision[party %d]: recorded (%v at %d), replayed (party %d, %v at %d)",
					w.Party, w.Value, w.At, g.Party, g.Value, g.At)
			}
		}
	}
	if got.FinishTime != want.FinishTime {
		add("finish time: recorded %d, replayed %d", want.FinishTime, got.FinishTime)
	}
	if got.MaxHonestDelay != want.MaxHonestDelay {
		add("max honest delay: recorded %d, replayed %d", want.MaxHonestDelay, got.MaxHonestDelay)
	}
	if got.MessagesSent != want.MessagesSent {
		add("messages sent: recorded %d, replayed %d", want.MessagesSent, got.MessagesSent)
	}
	if got.MessagesDelivered != want.MessagesDelivered {
		add("messages delivered: recorded %d, replayed %d", want.MessagesDelivered, got.MessagesDelivered)
	}
	if got.BytesSent != want.BytesSent {
		add("bytes sent: recorded %d, replayed %d", want.BytesSent, got.BytesSent)
	}
	if got.MessagesDropped != want.MessagesDropped {
		add("messages dropped: recorded %d, replayed %d", want.MessagesDropped, got.MessagesDropped)
	}
	if got.MessagesDuped != want.MessagesDuped {
		add("messages duped: recorded %d, replayed %d", want.MessagesDuped, got.MessagesDuped)
	}
	if got.Deliveries != want.Deliveries {
		add("deliveries: recorded %d, replayed %d", want.Deliveries, got.Deliveries)
	}
	if got.DeliveryHash != want.DeliveryHash {
		add("delivery hash: recorded %#x, replayed %#x", want.DeliveryHash, got.DeliveryHash)
	}
	if got.RunErr != want.RunErr {
		add("run verdict: recorded %d, replayed %d", want.RunErr, got.RunErr)
	}
	if got.ProtoErrs != want.ProtoErrs {
		add("protocol errors: recorded %d, replayed %d", want.ProtoErrs, got.ProtoErrs)
	}
	if len(rep.Checkpoints) != len(p.bundle.Checkpoints) {
		add("checkpoints: recorded %d, replayed %d", len(p.bundle.Checkpoints), len(rep.Checkpoints))
	} else {
		for i, ck := range p.bundle.Checkpoints {
			if rep.Checkpoints[i] != ck {
				add("checkpoint[%d]: recorded %#x, replayed %#x", i, ck, rep.Checkpoints[i])
			}
		}
	}
	if div.FirstBadSend == NoDivergentSend && len(div.Mismatches) == 0 {
		return nil
	}
	return div
}

// Replay re-executes a bundle and diffs it against the recorded digest. A
// nil Divergence means an exact match. The error return covers failures to
// run at all (invalid bundle, harness error), not divergence.
func Replay(b *Bundle) (*harness.Report, *Divergence, error) {
	prep, err := Prepare(b)
	if err != nil {
		return nil, nil, err
	}
	rep, err := harness.Run(prep.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("incident: replay: %w", err)
	}
	return rep, prep.Diff(rep), nil
}
