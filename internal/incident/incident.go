// Package incident implements the record/replay corpus: a compact,
// versioned trace-bundle format that captures everything needed to
// re-execute one simulated run bit-for-bit — the canonical scenario string,
// the seed and protocol configuration, the per-send delivery log from
// sched.Recorder, a per-send content checksum, and a digest of the
// execution's observable outcome (decisions, timing, message accounting,
// and the full delivery sequence hash).
//
// A bundle is captured with Capture (wired into `aarun -record` and the
// aafuzz failure-artifact path), persisted with Save/Load, and re-executed
// with Replay, which drives the run through sched.Replay and diffs every
// observable against the recorded digest. Any divergence — a send whose
// content differs, a missing delivery, a moved decision — is reported with
// the first divergent send sequence, which is the exact point to set a
// breakpoint on. The committed corpus under testdata/incidents/ replays in
// CI across {heap, calendar} event cores × batch on/off × parallelism 1/8,
// turning every future perf refactor's equivalence argument into data.
package incident

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Version is the current bundle format version. Decode accepts versions 1
// through 3 and rejects anything else with ErrVersion; the format is
// append-only within a version. Version 2 appends the network-fate record
// (dropped and duplicated send sequences, the reliable-transport flag, and
// the drop/dup counters in the digest); version 3 appends the checkpoint
// record (one content digest per crash-recovery snapshot, in firing
// order). Encode emits the lowest version that carries the bundle's data —
// version 1 without fate data, version 2 without checkpoints — so the
// pre-existing corpus re-encodes byte-identically.
const Version uint16 = 3

// versionFated is the first version carrying the network-fate record.
const versionFated uint16 = 2

// versionRecover is the first version carrying the checkpoint record.
const versionRecover uint16 = 3

// Sentinel errors.
var (
	// ErrMalformed indicates a structurally invalid bundle: bad magic,
	// impossible lengths, trailing garbage, or semantic contradictions
	// (e.g. inputs not matching the scenario's n). Truncation and checksum
	// failures wrap it.
	ErrMalformed = errors.New("incident: malformed bundle")
	// ErrTruncated wraps ErrMalformed: the bundle ends mid-field.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrMalformed)
	// ErrCorrupt wraps ErrMalformed: the payload checksum does not match.
	ErrCorrupt = fmt.Errorf("%w: checksum mismatch", ErrMalformed)
	// ErrVersion indicates a well-formed header with an unsupported format
	// version — the reader is too old or too new for the bundle.
	ErrVersion = errors.New("incident: unsupported bundle version")
	// ErrDivergence indicates a replayed execution that does not match the
	// bundle's recorded digest.
	ErrDivergence = errors.New("incident: replay diverged from recorded digest")
)

// Protocol tokens, matching aarun's -model flag vocabulary.
const (
	ProtoCrash   = "crash"
	ProtoTrim    = "trim"
	ProtoWitness = "witness"
	ProtoSync    = "sync"
)

// ProtoToken renders a core.Protocol as its bundle token.
func ProtoToken(p core.Protocol) (string, error) {
	switch p {
	case core.ProtoCrash:
		return ProtoCrash, nil
	case core.ProtoByzTrim:
		return ProtoTrim, nil
	case core.ProtoWitness:
		return ProtoWitness, nil
	case core.ProtoSync:
		return ProtoSync, nil
	default:
		return "", fmt.Errorf("incident: unknown protocol %v", p)
	}
}

// protoFromToken is the inverse of ProtoToken.
func protoFromToken(tok string) (core.Protocol, error) {
	switch tok {
	case ProtoCrash:
		return core.ProtoCrash, nil
	case ProtoTrim:
		return core.ProtoByzTrim, nil
	case ProtoWitness:
		return core.ProtoWitness, nil
	case ProtoSync:
		return core.ProtoSync, nil
	default:
		return 0, fmt.Errorf("%w: unknown protocol token %q", ErrMalformed, tok)
	}
}

// ByzRef names a Byzantine assignment by scenario-registry behavior key.
type ByzRef struct {
	Party sim.PartyID
	Name  string
}

// Decision is one party's recorded output.
type Decision struct {
	Party sim.PartyID
	Value float64
	At    sim.Time
}

// Digest summarizes everything observable about an execution. Replay
// recomputes it and diffs field by field.
type Digest struct {
	// Decisions lists every party that decided, ascending by party.
	Decisions []Decision
	// FinishTime and MaxHonestDelay are the run's timing observables.
	FinishTime     sim.Time
	MaxHonestDelay sim.Time
	// Message accounting, from sim.Stats.
	MessagesSent      int64
	MessagesDelivered int64
	BytesSent         int64
	// MessagesDropped and MessagesDuped count the network-fate decisions
	// (loss/dup/outage/flap axes); version-2 bundles record them so a
	// replay that drops or duplicates differently is named directly rather
	// than only through downstream accounting drift.
	MessagesDropped int64
	MessagesDuped   int64
	// Deliveries counts observer callbacks; DeliveryHash chains an FNV-1a
	// hash over every delivery (time, from, to, seq, payload) in observer
	// order, so any reordering or payload change is caught even when the
	// counts agree.
	Deliveries   int64
	DeliveryHash uint64
	// RunErr encodes the simulator verdict: 0 ok, 1 stalled, 2 event
	// budget, 3 other.
	RunErr uint8
	// ProtoErrs counts internal protocol errors across parties.
	ProtoErrs int64
}

// Run-error codes for Digest.RunErr.
const (
	RunOK uint8 = iota
	RunStalled
	RunEventBudget
	RunOtherErr
)

func runErrCode(err error) uint8 {
	switch {
	case err == nil:
		return RunOK
	case errors.Is(err, sim.ErrStalled):
		return RunStalled
	case errors.Is(err, sim.ErrEventBudget):
		return RunEventBudget
	default:
		return RunOtherErr
	}
}

// Bundle is one replayable incident. The Scenario string is authoritative
// for n, t, and the delivery schedule; Crashes/Byz, when non-empty, replace
// the scenario's fault derivation (the fuzzer's random crash timings are
// not expressible as registry fault kinds), in which case the scenario
// string must carry no fault tokens.
type Bundle struct {
	// Name labels the incident (the testdata corpus uses episode names;
	// the fuzzer uses "fuzz-trial-<i>").
	Name string
	// Scenario is the canonical scenario.Spec string with explicit n and t,
	// e.g. "splitviews/n=16,t=7" or "skew+spam/n=15,t=2".
	Scenario string
	// Protocol is the protocol token (see ProtoToken).
	Protocol string
	// Adaptive selects adaptive termination.
	Adaptive bool
	// Eps, Lo, Hi are the precision and promised input range.
	Eps, Lo, Hi float64
	// ExtraRounds adds round-budget slack.
	ExtraRounds int
	// SyncRoundTicks is the lock-step round length (sync protocol only).
	SyncRoundTicks sim.Time
	// Seed drives all run randomness.
	Seed int64
	// MaxEvents overrides the simulator event budget; 0 means default.
	MaxEvents int
	// Inputs holds one input per party.
	Inputs []float64
	// Crashes, when non-empty, is an explicit crash plan overriding the
	// scenario's fault tokens.
	Crashes []sim.CrashPlan
	// Byz, when non-empty, is an explicit Byzantine assignment (by registry
	// behavior name) overriding the scenario's fault tokens.
	Byz []ByzRef
	// Delays is the recorded per-send delivery log, dense by send sequence
	// (sched.Recorder.Dense). Zero entries mean "unrecorded".
	Delays []sim.Time
	// SendSums holds a per-send content checksum, dense by send sequence,
	// so replay can name the first send whose bytes diverge. Zero entries
	// mean "unrecorded" (sums are forced nonzero when present).
	SendSums []uint32
	// Drops lists the send sequences the network dropped (loss/outage/flap
	// axes), strictly ascending. Replay re-applies them verbatim, so the
	// recorded loss episode reproduces bit-for-bit.
	Drops []uint64
	// Dups lists the send sequences the network duplicated, strictly
	// ascending by sequence, each with the recorded extra delay of the
	// second copy.
	Dups []Dup
	// Reliable records that the run wrapped honest parties in the
	// ack/retransmit transport (harness.Spec.Reliable).
	Reliable bool
	// Checkpoints holds one content digest per crash-recovery snapshot the
	// run's restart plans took, in firing order (harness.Report.Checkpoints).
	// The restart plans themselves are re-derived from the scenario string's
	// recover/amnesia token on replay; the digests pin the snapshotted state
	// so a replay that checkpoints different bytes is named directly.
	Checkpoints []uint64
	// Digest is the recorded outcome replays are diffed against.
	Digest Digest
}

// Dup records one network-duplicated send: the second copy of send Seq
// arrived Extra ticks after the first.
type Dup struct {
	Seq   uint64
	Extra sim.Time
}

// fated reports whether the bundle carries version-2 fate data and must
// encode as version 2 or later.
func (b *Bundle) fated() bool {
	return len(b.Drops) > 0 || len(b.Dups) > 0 || b.Reliable ||
		b.Digest.MessagesDropped != 0 || b.Digest.MessagesDuped != 0
}

// recovered reports whether the bundle carries version-3 checkpoint data
// and must encode as version 3.
func (b *Bundle) recovered() bool {
	return len(b.Checkpoints) > 0
}

// caps bound decoded bundles so a hostile file cannot balloon memory.
const (
	maxStringLen = 1 << 12
	maxInputs    = 1 << 16
	maxFaults    = 1 << 16
	maxDecisions = 1 << 16
	maxSends     = 1 << 26
)

// Validate checks semantic soundness: the scenario parses with explicit n
// and t, the protocol parameters are runnable, fault overrides are in
// range and resolvable, and the trace arrays are mutually consistent.
func (b *Bundle) Validate() error {
	scen, p, err := b.resolveConfig()
	if err != nil {
		return err
	}
	if len(b.Inputs) != p.N {
		return fmt.Errorf("%w: %d inputs for n=%d", ErrMalformed, len(b.Inputs), p.N)
	}
	// Only party-fault tokens conflict with explicit overrides; network-fault
	// axes (loss/dup/outage/flap) live in the scheduler and restart axes
	// (recover/amnesia) keep their parties honest, so both compose freely
	// with the fuzzer's explicit crash plans (party overlap is caught by
	// sim.Config validation at run time).
	if len(b.Crashes) > 0 || len(b.Byz) > 0 {
		for _, f := range scen.Faults {
			if !scenario.IsNetFault(f) && !scenario.IsRestartFault(f) {
				return fmt.Errorf("%w: scenario %q carries party-fault tokens alongside explicit fault overrides", ErrMalformed, b.Scenario)
			}
		}
	}
	if len(b.Crashes)+len(b.Byz) > p.T {
		return fmt.Errorf("%w: %d explicit faults exceed t=%d", ErrMalformed, len(b.Crashes)+len(b.Byz), p.T)
	}
	seen := map[sim.PartyID]bool{}
	for _, c := range b.Crashes {
		if c.Party < 0 || int(c.Party) >= p.N {
			return fmt.Errorf("%w: crash party %d out of range [0,%d)", ErrMalformed, c.Party, p.N)
		}
		if c.AfterSends < 0 {
			return fmt.Errorf("%w: crash party %d has negative send budget", ErrMalformed, c.Party)
		}
		if seen[c.Party] {
			return fmt.Errorf("%w: party %d assigned two faults", ErrMalformed, c.Party)
		}
		seen[c.Party] = true
	}
	for _, z := range b.Byz {
		if z.Party < 0 || int(z.Party) >= p.N {
			return fmt.Errorf("%w: byzantine party %d out of range [0,%d)", ErrMalformed, z.Party, p.N)
		}
		if seen[z.Party] {
			return fmt.Errorf("%w: party %d assigned two faults", ErrMalformed, z.Party)
		}
		seen[z.Party] = true
		kind, ok := scenario.Fault(z.Name)
		if !ok || kind.Behavior == nil {
			return fmt.Errorf("%w: unknown byzantine behavior %q", ErrMalformed, z.Name)
		}
	}
	if len(b.SendSums) != len(b.Delays) {
		return fmt.Errorf("%w: %d send sums for %d delays", ErrMalformed, len(b.SendSums), len(b.Delays))
	}
	for seq, d := range b.Delays {
		if d < 0 || d > sim.MaxDelayCap {
			return fmt.Errorf("%w: delay %d at seq %d outside [0,%d]", ErrMalformed, d, seq, sim.MaxDelayCap)
		}
	}
	for i, seq := range b.Drops {
		if i > 0 && seq <= b.Drops[i-1] {
			return fmt.Errorf("%w: drop seqs not strictly ascending at index %d", ErrMalformed, i)
		}
		if seq >= uint64(len(b.Delays)) || b.Delays[seq] == 0 {
			return fmt.Errorf("%w: dropped seq %d has no recorded send", ErrMalformed, seq)
		}
	}
	for i, dup := range b.Dups {
		if i > 0 && dup.Seq <= b.Dups[i-1].Seq {
			return fmt.Errorf("%w: dup seqs not strictly ascending at index %d", ErrMalformed, i)
		}
		if dup.Seq >= uint64(len(b.Delays)) || b.Delays[dup.Seq] == 0 {
			return fmt.Errorf("%w: duplicated seq %d has no recorded send", ErrMalformed, dup.Seq)
		}
		if dup.Extra < 1 || dup.Extra > sim.MaxDelayCap {
			return fmt.Errorf("%w: dup extra delay %d at seq %d outside [1,%d]", ErrMalformed, dup.Extra, dup.Seq, sim.MaxDelayCap)
		}
	}
	for i, ck := range b.Checkpoints {
		if ck == 0 {
			return fmt.Errorf("%w: zero checkpoint digest at index %d", ErrMalformed, i)
		}
	}
	if b.MaxEvents < 0 {
		return fmt.Errorf("%w: negative event budget", ErrMalformed)
	}
	return nil
}

// resolveConfig parses the scenario and assembles protocol parameters.
func (b *Bundle) resolveConfig() (scenario.Spec, core.Params, error) {
	scen, err := scenario.Parse(b.Scenario)
	if err != nil {
		return scenario.Spec{}, core.Params{}, fmt.Errorf("%w: scenario: %v", ErrMalformed, err)
	}
	if scen.T == scenario.TUnset {
		return scenario.Spec{}, core.Params{}, fmt.Errorf("%w: scenario %q must carry an explicit t", ErrMalformed, b.Scenario)
	}
	proto, err := protoFromToken(b.Protocol)
	if err != nil {
		return scenario.Spec{}, core.Params{}, err
	}
	p := core.Params{
		Protocol:      proto,
		N:             scen.N,
		T:             scen.T,
		Eps:           b.Eps,
		Lo:            b.Lo,
		Hi:            b.Hi,
		Adaptive:      b.Adaptive,
		ExtraRounds:   b.ExtraRounds,
		RoundDuration: b.SyncRoundTicks,
	}
	if err := p.Validate(); err != nil {
		return scenario.Spec{}, core.Params{}, fmt.Errorf("%w: params: %v", ErrMalformed, err)
	}
	return scen, p, nil
}

// spec lowers the bundle to an executable harness.Spec. Explicit fault
// overrides replace the scenario-derived assignments.
func (b *Bundle) spec() (harness.Spec, error) {
	if err := b.Validate(); err != nil {
		return harness.Spec{}, err
	}
	scen, p, err := b.resolveConfig()
	if err != nil {
		return harness.Spec{}, err
	}
	spec, err := harness.SpecFrom(p, b.Inputs, scen, b.Seed)
	if err != nil {
		return harness.Spec{}, fmt.Errorf("%w: lower: %v", ErrMalformed, err)
	}
	spec.MaxEvents = b.MaxEvents
	spec.Reliable = b.Reliable
	if len(b.Crashes) > 0 || len(b.Byz) > 0 {
		spec.Crashes = append([]sim.CrashPlan(nil), b.Crashes...)
		spec.Byz = nil
		if len(b.Byz) > 0 {
			spec.Byz = make(map[sim.PartyID]fault.Behavior, len(b.Byz))
			for _, z := range b.Byz {
				kind, _ := scenario.Fault(z.Name)
				spec.Byz[z.Party] = kind.Behavior
			}
		}
	}
	return spec, nil
}

// digestOf summarizes a finished run plus the delivery trace the digester
// observed.
func digestOf(rep *harness.Report, deliveries int64, hash uint64) Digest {
	d := Digest{
		FinishTime:        rep.Result.FinishTime,
		MaxHonestDelay:    rep.Result.MaxHonestDelay,
		MessagesSent:      int64(rep.Result.Stats.MessagesSent),
		MessagesDelivered: int64(rep.Result.Stats.MessagesDelivered),
		BytesSent:         int64(rep.Result.Stats.BytesSent),
		MessagesDropped:   int64(rep.Result.Stats.MessagesDropped),
		MessagesDuped:     int64(rep.Result.Stats.MessagesDuped),
		Deliveries:        deliveries,
		DeliveryHash:      hash,
		RunErr:            runErrCode(rep.RunErr),
		ProtoErrs:         int64(len(rep.ProtoErrs)),
	}
	for id, v := range rep.Result.Decisions {
		d.Decisions = append(d.Decisions, Decision{Party: id, Value: v, At: rep.Result.DecidedAt[id]})
	}
	sortDecisions(d.Decisions)
	return d
}

func sortDecisions(ds []Decision) {
	// Insertion sort: decision lists are n-sized and this runs once per
	// capture/replay.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Party < ds[j-1].Party; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
