package incident

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// sampleBundle is a small but fully populated bundle for codec tests.
func sampleBundle() *Bundle {
	return &Bundle{
		Name:        "sample",
		Scenario:    "random/n=5,t=2",
		Protocol:    ProtoCrash,
		Eps:         1e-3,
		Lo:          0,
		Hi:          1,
		ExtraRounds: 1,
		Seed:        -12345,
		MaxEvents:   5000,
		Inputs:      []float64{0, 0.25, 0.5, 0.75, 1},
		Crashes:     []sim.CrashPlan{{Party: 0, AfterSends: 7}},
		Byz:         nil,
		Delays:      []sim.Time{3, 1, 0, 9, 2},
		SendSums:    []uint32{11, 22, 0, 44, 55},
		Digest: Digest{
			Decisions:         []Decision{{Party: 1, Value: 0.5, At: 40}, {Party: 2, Value: 0.5, At: 41}},
			FinishTime:        41,
			MaxHonestDelay:    9,
			MessagesSent:      120,
			MessagesDelivered: 115,
			BytesSent:         2040,
			Deliveries:        115,
			DeliveryHash:      0xdeadbeefcafef00d,
			RunErr:            RunOK,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := sampleBundle()
	data, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", b, got)
	}
	// Encoding is deterministic.
	data2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data, err := Encode(sampleBundle())
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail cleanly — truncation, checksum, or
	// malformed — and never panic. (A short prefix fails the CRC before
	// field parsing; what matters is the wrapped sentinel.)
	for cut := 0; cut < len(data); cut++ {
		_, err := Decode(data[:cut])
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
		if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap a sentinel", cut, err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(sampleBundle())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the payload: the checksum must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted payload: got %v, want ErrCorrupt", err)
	}
	// ErrCorrupt wraps ErrMalformed.
	if _, err := Decode(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("ErrCorrupt does not wrap ErrMalformed: %v", err)
	}
	// Bad magic.
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad magic: got %v", err)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data, err := Encode(sampleBundle())
	if err != nil {
		t.Fatal(err)
	}
	skewed := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(skewed[4:6], Version+1)
	_, err = Decode(skewed)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrMalformed) {
		t.Fatal("version skew must be distinguishable from malformed input")
	}
}

func TestDecodeRejectsSemanticNonsense(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Bundle)
	}{
		{"unknown protocol", func(b *Bundle) { b.Protocol = "paxos" }},
		{"unparseable scenario", func(b *Bundle) { b.Scenario = "n=???" }},
		{"scenario without t", func(b *Bundle) { b.Scenario = "random/n=5" }},
		{"inputs vs n", func(b *Bundle) { b.Inputs = b.Inputs[:3] }},
		{"crash party out of range", func(b *Bundle) { b.Crashes[0].Party = 99 }},
		{"duplicate fault", func(b *Bundle) {
			b.Crashes = append(b.Crashes, sim.CrashPlan{Party: 0, AfterSends: 1})
		}},
		{"faults exceed t", func(b *Bundle) {
			b.Crashes = append(b.Crashes,
				sim.CrashPlan{Party: 1, AfterSends: 1}, sim.CrashPlan{Party: 2, AfterSends: 1})
		}},
		{"unknown behavior", func(b *Bundle) { b.Byz = []ByzRef{{Party: 1, Name: "gremlin"}} }},
		{"fault tokens plus overrides", func(b *Bundle) { b.Scenario = "random+crash/n=5,t=2" }},
		{"sums/delays length skew", func(b *Bundle) { b.SendSums = b.SendSums[:2] }},
		{"delay above cap", func(b *Bundle) { b.Delays[0] = sim.MaxDelayCap + 1 }},
		{"bad eps", func(b *Bundle) { b.Eps = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := sampleBundle()
			tc.mutate(b)
			// The encoder itself validates; build bytes from a valid bundle
			// when the mutation only breaks semantics the encoder checks.
			if _, err := Encode(b); !errors.Is(err, ErrMalformed) {
				t.Fatalf("Encode accepted %s (err %v)", tc.name, err)
			}
		})
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	b := sampleBundle()
	if err := Save(b, dir+"/a"+BundleExt); err != nil {
		t.Fatal(err)
	}
	b2 := sampleBundle()
	b2.Name = "second"
	if err := Save(b2, dir+"/b"+BundleExt); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "sample" || got[1].Name != "second" {
		t.Fatalf("LoadDir got %d bundles", len(got))
	}
	if _, err := Load(dir + "/missing" + BundleExt); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
