// Quickstart: five parties with inputs scattered over [0, 10] reach
// 0.01-agreement despite two crash faults and an adversarial message
// scheduler. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/aa"
)

func main() {
	cfg := aa.Config{
		Model:   aa.ModelCrash, // crash faults, needs n >= 2t+1
		N:       5,
		T:       2,
		Epsilon: 0.01,
		Lo:      0, // all honest inputs are promised to lie in [0, 10]
		Hi:      10,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	rounds, _ := cfg.Rounds()
	fmt.Printf("config: %s model, n=%d t=%d eps=%g -> %d rounds of value exchange\n",
		cfg.Model, cfg.N, cfg.T, cfg.Epsilon, rounds)

	inputs := []float64{0.0, 2.5, 5.0, 7.5, 10.0}

	out, err := aa.Simulate(cfg, inputs,
		aa.WithSeed(7),
		aa.WithScheduler(aa.SchedSplitViews), // adversarial delivery order
		aa.WithCrash(0, 3),                   // party 0 dies mid-multicast
		aa.WithCrash(4, 40),                  // party 4 dies a few rounds in
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nparty outputs:")
	for id, v := range out.Values {
		fmt.Printf("  party %d: %.4f\n", id, v)
	}
	fmt.Printf("\nspread %.4g <= eps %.4g: %v\n", out.Spread, cfg.Epsilon, out.Agreed)
	fmt.Printf("all outputs inside the honest input hull: %v\n", out.Valid)
	fmt.Printf("asynchronous rounds: %.1f, messages: %d, bytes: %d\n",
		out.Rounds, out.Messages, out.Bytes)
	if !out.OK() {
		log.Fatal("agreement failed")
	}
}
