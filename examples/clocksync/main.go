// Clock synchronization: nine nodes keep their logical clock offsets within
// 2ms of each other by running approximate agreement once per epoch. Between
// epochs every clock drifts by a random amount up to ±5ms, and in each epoch
// up to four nodes may crash and recover (modeled as fresh crash faults per
// epoch). Repeated ε-agreement bounds the dispersion forever, which is the
// classical repeated-agreement workload for approximate agreement: exact
// consensus per epoch would be impossible deterministically in asynchrony
// (FLP), while approximate agreement is deterministic and cheap.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/aa"
)

func main() {
	const (
		nodes     = 9
		faults    = 4
		epsilonMS = 2.0
		driftMS   = 5.0
		epochs    = 6
	)
	rng := rand.New(rand.NewSource(4242))

	// Initial clock offsets in milliseconds, widely dispersed.
	offsets := make([]float64, nodes)
	for i := range offsets {
		offsets[i] = rng.Float64()*200 - 100
	}

	fmt.Printf("%-7s %-14s %-14s %s\n", "epoch", "pre-sync", "post-sync", "notes")
	for epoch := 1; epoch <= epochs; epoch++ {
		lo, hi := minMax(offsets)
		cfg := aa.Config{
			Model:   aa.ModelCrash,
			N:       nodes,
			T:       faults,
			Epsilon: epsilonMS,
			// The promised range must cover the current offsets; drift is
			// bounded, so each epoch can promise a tight window.
			Lo: lo - driftMS,
			Hi: hi + driftMS,
		}
		crashed := rng.Intn(faults + 1)
		opts := []aa.SimOption{
			aa.WithSeed(int64(epoch) * 31),
			aa.WithScheduler(aa.SchedRandom),
		}
		for c := 0; c < crashed; c++ {
			opts = append(opts, aa.WithCrash(c, 5+rng.Intn(100)))
		}
		out, err := aa.Simulate(cfg, offsets, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if !out.OK() {
			log.Fatalf("epoch %d: sync failed: spread %.3f", epoch, out.Spread)
		}
		// Nodes adopt their agreement outputs as the new offsets; crashed
		// nodes recover with their old offset (they re-join next epoch).
		post := make([]float64, nodes)
		for i := range post {
			if v, ok := out.Values[i]; ok {
				post[i] = v
			} else {
				post[i] = offsets[i]
			}
		}
		preSpread := hi - lo
		_, postHi := minMax(post)
		postLo, _ := minMax(post)
		fmt.Printf("%-7d %-14s %-14s %d crashed, %d msgs\n",
			epoch,
			fmt.Sprintf("%.2fms wide", preSpread),
			fmt.Sprintf("%.2fms wide", postHi-postLo),
			crashed, out.Messages)

		// Clocks drift until the next epoch.
		offsets = post
		for i := range offsets {
			offsets[i] += rng.Float64()*2*driftMS - driftMS
		}
	}
	fmt.Println("\ndispersion stays bounded by eps + 2*drift across epochs")
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
