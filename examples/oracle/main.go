// Price oracle on the live runtime: seven oracle nodes observe slightly
// different exchange prices and must publish values that agree within one
// basis point — on a real goroutine-per-node runtime with channel
// transports and jittered delivery, not the deterministic simulator. This
// is the deployment-shaped path of the library: the same protocol state
// machines, driven by real concurrency and wall-clock timers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/aa"
)

func main() {
	const (
		nodes = 7
		t     = 3 // crash-fault bound (n >= 2t+1)
		price = 42_000.0
	)
	cfg := aa.Config{
		Model:   aa.ModelCrash,
		N:       nodes,
		T:       t,
		Epsilon: price * 1e-4, // one basis point
		Lo:      price * 0.95, // sanity band promised by the feed contract
		Hi:      price * 1.05,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// Each node's locally observed price (spread of ~0.4%).
	observed := []float64{
		41_923.10, 42_011.50, 41_988.25, 42_102.75,
		41_956.00, 42_044.30, 42_075.80,
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	out, err := aa.RunLive(ctx, cfg, observed, aa.LiveOptions{
		MaxJitter: 2 * time.Millisecond,
		Seed:      time.Now().UnixNano() % 1000, // jitter varies run to run
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("published oracle prices:")
	for id, v := range out.Values {
		fmt.Printf("  node %d: %.2f\n", id, v)
	}
	fmt.Printf("\nspread %.4f (allowed %.4f): agreed=%v valid=%v\n",
		out.Spread, cfg.Epsilon, out.Agreed, out.Valid)
	fmt.Printf("wall time %.0fms, %d messages over live channels\n",
		time.Since(start).Seconds()*1000, out.Messages)
	if !out.OK() {
		log.Fatal("oracle round failed")
	}
}
