// Sensor fusion: ten temperature sensors must agree on a reading within
// 0.1°C, but three of them are compromised and actively lie — one reports
// absurd extremes, one tells different values to different peers
// (equivocation), one floods garbage. The witness-technique protocol
// (optimal resilience t < n/3) neutralizes all three: every honest sensor
// converges inside the range of the honest readings.
//
// This is the scenario that motivates Byzantine approximate agreement:
// real-valued fusion where exact consensus is unnecessary but bounded
// disagreement and hull-validity are safety-critical.
package main

import (
	"fmt"
	"log"

	"repro/aa"
)

func main() {
	const (
		sensors   = 10
		faulty    = 3
		precision = 0.1 // °C
	)
	cfg := aa.Config{
		Model:   aa.ModelByzantineWitness,
		N:       sensors,
		T:       faulty,
		Epsilon: precision,
		Lo:      -40, // physically plausible range, promised a priori
		Hi:      60,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	// Honest sensors read the true temperature (21.3°C) with small noise.
	// Parties 2, 5, 8 are compromised; their entries are ignored.
	readings := []float64{21.24, 21.31, 0, 21.28, 21.35, 0, 21.30, 21.27, 0, 21.33}

	out, err := aa.Simulate(cfg, readings,
		aa.WithSeed(99),
		aa.WithScheduler(aa.SchedSplitViews),
		aa.WithByzantine(2, aa.ByzExtreme),    // reports +1e9 °C
		aa.WithByzantine(5, aa.ByzEquivocate), // different lies to different peers
		aa.WithByzantine(8, aa.ByzSpam),       // floods malformed traffic
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fused readings of the honest sensors:")
	for id, v := range out.Values {
		fmt.Printf("  sensor %d: %.4f °C\n", id, v)
	}
	fmt.Printf("\ndisagreement %.4g °C (required <= %.4g): %v\n",
		out.Spread, precision, out.Agreed)
	fmt.Printf("within honest reading range [21.24, 21.35]: %v\n", out.Valid)
	fmt.Printf("cost: %.0f async rounds, %d messages\n", out.Rounds, out.Messages)
	if !out.OK() {
		log.Fatal("fusion failed")
	}
}
