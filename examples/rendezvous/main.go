// Multidimensional rendezvous: nine autonomous drones scattered over a
// 2km × 2km area must converge on (approximately) one rendezvous point —
// within one meter of each other in both coordinates — while two hijacked
// drones broadcast bogus positions and the radio network delivers messages
// in adversarial order. This is the classical motivating scenario for
// multidimensional approximate agreement; the library composes its scalar
// witness protocol coordinate-wise, which gives per-coordinate ε-agreement
// and bounding-box validity (every agreed coordinate lies within the range
// of the honest drones' coordinates).
package main

import (
	"fmt"
	"log"

	"repro/aa"
)

func main() {
	const (
		drones   = 9
		hijacked = 2
		eps      = 1.0 // meters
	)
	cfg := aa.Config{
		Model:   aa.ModelByzantineWitness, // t < n/3, survives lying drones
		N:       drones,
		T:       hijacked,
		Epsilon: eps,
		Lo:      -1000, // operating area promised by mission parameters
		Hi:      1000,
	}

	// Honest drone positions (meters from the staging point). Drones 2 and
	// 6 are hijacked; their entries are ignored.
	positions := [][]float64{
		{-850, 420}, {-310, -775}, {0, 0}, {125, 640},
		{470, -220}, {615, 890}, {0, 0}, {-940, -130},
		{333, 95},
	}

	out, err := aa.SimulateVector(cfg, positions,
		aa.WithSeed(17),
		aa.WithScheduler(aa.SchedPartition),
		aa.WithByzantine(2, aa.ByzEquivocate), // reports different positions to different drones
		aa.WithByzantine(6, aa.ByzExtreme),    // reports a position far outside the area
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("agreed rendezvous points (honest drones):")
	for id, pt := range out.Points {
		fmt.Printf("  drone %d: (%8.2f, %8.2f)\n", id, pt[0], pt[1])
	}
	fmt.Printf("\nmax coordinate disagreement: %.3f m (allowed %.1f m)\n", out.MaxSpread, eps)
	fmt.Printf("inside the honest bounding box: %v\n", out.Valid)
	fmt.Printf("radio messages: %d (%d bytes)\n", out.Messages, out.Bytes)
	if !out.OK() {
		log.Fatal("rendezvous failed")
	}
}
