# Developer entry points. `make check` is the tier-1 gate (build + vet +
# tests); `make bench` refreshes the current BENCH_*.json performance
# snapshot at the repo root and `make bench-compare` diffs it against the
# previous one; `make race` exercises the parallel experiment engine under
# the race detector.

GO ?= go
BENCH_OLD ?= BENCH_7.json
BENCH_NEW ?= BENCH_8.json

.PHONY: check vet race bench bench-compare bench-smoke bench-smoke-refresh benchmem e12-smoke e12-xl incident-replay incident-regen livenet-soak recovery-soak serve-soak

check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race -run 'TestEngine|TestMapOrdered|TestRunAll|TestSetParallelism|TestSmoke|TestCoreEquivalenceTraces|TestRunContext' ./internal/harness/
	$(GO) test -race -run 'TestShard' ./internal/sim/

# bench regenerates the committed benchmark snapshot. Seeds are kept small
# so the refresh stays in the tens of seconds; the snapshot records the
# seed count so trajectories compare like with like.
bench:
	$(GO) run ./cmd/aabench -seeds 2 -json $(BENCH_NEW)

# bench-compare prints the per-experiment and per-micro delta table between
# the previous snapshot and the current one, regressions highlighted.
bench-compare:
	$(GO) run ./cmd/aabench -compare $(BENCH_OLD) $(BENCH_NEW)

# bench-smoke is the CI regression gate: a reduced-seed snapshot (no micro
# benches, which need a quiet machine) compared against the committed
# BENCH_SMOKE.json. Wall-clock deltas are advisory; any msgs/bytes-per-run
# drift makes the compare exit non-zero — correctness regressions surface
# on the PR, not after merge. Refresh the committed file with
# `make bench-smoke-refresh` after an intentional behavior change.
bench-smoke:
	$(GO) run ./cmd/aabench -seeds 1 -micro=false -json /tmp/bench-smoke.json
	$(GO) run ./cmd/aabench -compare BENCH_SMOKE.json /tmp/bench-smoke.json

bench-smoke-refresh:
	$(GO) run ./cmd/aabench -seeds 1 -micro=false -json BENCH_SMOKE.json

# e12-smoke exercises the n=512 scale axis (batched tick delivery + SoA
# party state) on every PR: a reduced scenario slice at n=512 on the crash
# protocol, ~3M messages per run, asserting full invariant success.
e12-smoke:
	E12_LARGE_SMOKE=1 $(GO) test -run TestE12LargeN512Smoke -v -timeout 20m ./internal/harness/

# e12-xl exercises the n=1024 scale axis the intra-run sharding layer
# unlocks: the reduced E12-XL slice (E12XLSizes([]int{1024})) at shards=4,
# ~10M messages per fault-free run, asserting full invariant success.
# The full n=4096 sweep lives in the committed BENCH snapshot (aabench -xl).
e12-xl:
	E12_XL_SMOKE=1 $(GO) test -run TestE12XL1024Smoke -v -timeout 30m ./internal/harness/

# incident-replay replays every committed incident bundle in
# testdata/incidents/ across the {heap, calendar} x {batch on, off} x
# {1, 8 workers} matrix and diffs each run against the recorded digest.
# Any divergence reports the episode, the matrix cell, and the first
# divergent send sequence. Runs in well under a second; wired into CI.
incident-replay:
	$(GO) test -run 'TestIncidentCorpusReplayMatrix|TestCorpusMutationDetected' -count=1 -v ./internal/incident/

# incident-regen re-captures the corpus from the episode definitions in
# internal/incident/corpus.go. Use when adding an episode or after an
# *intentional* schedule-affecting change — never to paper over an
# unexplained divergence.
incident-regen:
	INCIDENT_REGEN=1 $(GO) test -run TestIncidentCorpusReplayMatrix -count=1 -v ./internal/incident/

# livenet-soak runs the real-goroutine transport under the race detector
# with injected loss, duplication, jitter, and flapping parties, reliable
# transport on: the run must converge with no hung senders. Seeded and
# wall-clock-bounded (completes in a few seconds); gated behind
# LIVENET_SOAK=1 so default test runs stay fast.
livenet-soak:
	LIVENET_SOAK=1 $(GO) test -race -run TestLivenetSoak -count=1 -v ./internal/livenet/

# recovery-soak runs the crash-recovery supervisor under the race detector:
# two parties checkpointed, killed, and rejoined mid-run under 10% injected
# loss on the reliable transport. The run must reconverge to eps-agreement
# with both restarts attributed. Seeded and wall-clock-bounded; gated
# behind RECOVERY_SOAK=1 so default test runs stay fast.
recovery-soak:
	RECOVERY_SOAK=1 $(GO) test -race -run TestRecoverySoak -count=1 -v ./internal/livenet/

# serve-soak runs the serving layer against wall-clock agreement instances
# under the race detector: heavy-tailed arrivals at 2x saturation pushed
# through the admission envelope onto the live transport with 10% loss and
# one flapping party, reliable transport on. Every request must be
# accounted (decided/shed/deadline/breaker/degraded — no silent drops) and
# goodput must stay above the floor. Seeded and wall-clock-bounded; gated
# behind SERVE_SOAK=1 so default test runs stay fast.
serve-soak:
	SERVE_SOAK=1 $(GO) test -race -run TestServeSoak -count=1 -v -timeout 5m ./internal/serve/

# benchmem runs the substrate micro-benchmarks with allocation accounting,
# the numbers PERF.md tracks.
benchmem:
	$(GO) test -run '^$$' -bench 'BenchmarkApproxFuncs|BenchmarkContractionSearch|BenchmarkWire|BenchmarkSimLoop|BenchmarkScenarioE12|BenchmarkRunReused|BenchmarkShardedTick' -benchmem .
