# Developer entry points. `make check` is the tier-1 gate (build + vet +
# tests); `make bench` refreshes the BENCH_1.json performance snapshot at
# the repo root; `make race` exercises the parallel experiment engine under
# the race detector.

GO ?= go

.PHONY: check vet race bench benchmem

check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race -run 'TestEngine|TestMapOrdered|TestRunAll|TestSetParallelism|TestSmoke' ./internal/harness/

# bench regenerates the committed benchmark snapshot. Seeds are kept small
# so the refresh stays in the tens of seconds; the snapshot records the
# seed count so trajectories compare like with like.
bench:
	$(GO) run ./cmd/aabench -seeds 2 -json BENCH_1.json

# benchmem runs the substrate micro-benchmarks with allocation accounting,
# the numbers PERF.md tracks.
benchmem:
	$(GO) test -run '^$$' -bench 'BenchmarkApproxFuncs|BenchmarkContractionSearch|BenchmarkWire' -benchmem .
